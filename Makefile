# Developer entry points. `make verify` is the tier-1 gate: it builds and
# vets everything, checks formatting, runs the full test suite, the
# allocation-budget gate (E/W/S work units must not allocate), and
# race-checks the concurrent packages (the public API, the model server,
# the flat batch predictor, and the training engines).

GO ?= go

.PHONY: verify build vet fmt-check test alloc-check race chaos ingest-soak cluster-soak bench benchcmp gobench serve-bench servebench driftbench clusterbench

verify: build vet fmt-check test alloc-check race chaos ingest-soak cluster-soak

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Zero-allocation gates for the scratch-arena hot paths: the E/W/S work
# units (internal/core/alloc_test.go), the histogram engine, and the
# level-synchronous predict kernel's steady state (-count=1 so a cached
# pass can't mask a regression introduced by a dependency).
alloc-check:
	$(GO) test -count=1 -run 'TestWorkUnitAllocationBudget' ./internal/core/
	$(GO) test -count=1 -run 'TestHistWorkUnitAllocationBudget' ./internal/hist/
	$(GO) test -count=1 -run 'TestLevelKernelAllocationBudget' ./internal/flat/

race:
	$(GO) test -race . ./internal/serve/... ./internal/flat/... ./internal/core/... ./internal/trace/... ./internal/hist/... ./internal/cluster/... ./internal/loadtest/...

# The chaos matrix: every scheme x every storage backend x deterministic
# fault plans (transient/permanent/short-write/panic/latency), under the
# race detector, with goroutine-leak and temp-dir-leak checks (see
# internal/core/chaos_test.go and phasefault_test.go).
chaos:
	$(GO) test -race -count=1 -run 'TestChaosMatrix|TestPhaseFaults|TestStoreCloseErrorSurfaces|TestTempDirRemovedOnStoreCtorFailure|TestHistChaos' ./internal/core/
	$(GO) test -race -count=1 -run 'TestChaosForest' .

# Online-learning soak: concurrent drifting ingest + batched predict
# against one server with a fast retrain loop, under the race detector;
# fails on any 5xx (-count=1 so every run exercises the loop afresh).
ingest-soak:
	$(GO) test -race -count=1 -run 'TestIngestPredictSoak' ./internal/serve/

# Cluster soak: a 3-node in-process fleet on real TCP listeners under
# open-loop overload, one node hard-killed and restarted on the same port
# mid-run with a model published during the outage, under the race
# detector; fails on any 5xx or if anti-entropy does not converge the
# restarted node (-count=1 so every run replays the crash afresh).
cluster-soak:
	$(GO) test -race -count=1 -run 'TestClusterSoakKillRestart' ./internal/cluster/

# The build-phase observability sweep: real instrumented builds over the
# paper's F1/F7 pair plus the forest build/serve rows, written to the
# checked-in BENCH_build.json.
bench:
	$(GO) run ./cmd/benchjson -repeat 2 -forest-trees 1,5,25 -out BENCH_build.json

# Diff the checked-in sweep against the previous PR's baseline; fails on a
# >10% build-time regression in any matched run.
benchcmp:
	$(GO) run ./cmd/benchjson -compare results/bench_pr2_baseline.json BENCH_build.json

# Go micro-benchmarks for the root package (predict paths etc).
gobench:
	$(GO) test -run xxx -bench . -benchmem .

# The serving hot-path trio: pointer loop vs flat walk vs sharded batch.
serve-bench:
	$(GO) test -run xxx -bench 'BenchmarkPredict(Pointer|Flat|BatchParallel)' .

# End-to-end serving throughput: loadgen's driver against an in-process
# server in three configurations (inline, micro-batched, open-loop
# overload), appended to BENCH_build.json as "serve_runs".
servebench:
	$(GO) run ./cmd/benchjson -serve -out BENCH_build.json

# Multi-process cluster harness (no docker): build the real parclassd
# binary, boot a 3-node fleet, kill and restart a node under 2x open-loop
# overload with a model published during the outage, and append the
# kill-and-restart row to BENCH_build.json as "cluster_runs". Fails on
# any 5xx or if the restarted node does not converge by anti-entropy.
clusterbench:
	$(GO) build -o bin/parclassd ./cmd/parclassd
	$(GO) run ./cmd/benchjson -cluster -parclassd bin/parclassd -out BENCH_build.json

# Online drift recovery: stream an F1→F7 drifting labeled feed into an
# in-process server with a retrain loop and measure time-to-recover,
# appended to BENCH_build.json as "drift_runs".
driftbench:
	$(GO) run ./cmd/benchjson -drift -out BENCH_build.json
