# Developer entry points. `make verify` is the tier-1 gate: it builds and
# vets everything, runs the full test suite, and race-checks the concurrent
# packages (the model server, the flat batch predictor, and the training
# engines).

GO ?= go

.PHONY: verify build vet test race bench serve-bench

verify: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/serve/... ./internal/flat/... ./internal/core/...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# The serving hot-path trio: pointer loop vs flat walk vs sharded batch.
serve-bench:
	$(GO) test -run xxx -bench 'BenchmarkPredict(Pointer|Flat|BatchParallel)' .
