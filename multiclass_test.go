package parclass

import (
	"math"
	"testing"
)

// TestMulticlassEndToEnd exercises the k>2 code paths of the entire stack:
// generation, gini over k classes, all parallel schemes, evaluation and
// probability prediction.
func TestMulticlassEndToEnd(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{
		Function: 7, Tuples: 4000, Seed: 3, Classes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ds.ClassNames()); got != 4 {
		t.Fatalf("classes = %d", got)
	}
	dist := ds.ClassDistribution()
	for _, name := range ds.ClassNames() {
		if dist[name] == 0 {
			t.Fatalf("class %s empty: %v", name, dist)
		}
	}

	train, test := ds.Shuffle(1).SplitHoldout(0.25)
	ref, err := Train(train, Options{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	// All schemes agree on multiclass data too.
	for _, alg := range []Algorithm{Basic, FWK, MWK, Subtree, RecordParallel} {
		m, err := Train(train, Options{Algorithm: alg, Procs: 3, MaxDepth: 10})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if m.String() != ref.String() {
			t.Fatalf("%v grew a different multiclass tree", alg)
		}
	}

	if acc := ref.Accuracy(test); acc < 0.85 {
		t.Fatalf("4-class holdout accuracy %.3f < 0.85", acc)
	}
	metrics := ref.Evaluate(test)
	if len(metrics.PerClass) != 4 || len(metrics.ConfusionMatrix) != 4 {
		t.Fatalf("metrics shape wrong: %d classes", len(metrics.PerClass))
	}
}

func TestMulticlassF1AgeBands(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{Function: 1, Tuples: 3000, Seed: 5, Classes: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(ds, Options{Algorithm: MWK, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Three age bands are perfectly separable: the tree should nail them
	// with only age splits.
	if acc := m.Accuracy(ds); acc != 1.0 {
		t.Fatalf("3-band age rule accuracy %.4f != 1", acc)
	}
	imp := m.AttrImportance()
	if len(imp) != 1 || imp[0][:3] != "age" {
		t.Fatalf("expected only age splits, got %v", imp)
	}
	if st := m.Stats(); st.Leaves != 3 {
		t.Fatalf("3-band tree has %d leaves, want 3", st.Leaves)
	}
}

func TestSyntheticClassesValidation(t *testing.T) {
	if _, err := Synthetic(SyntheticConfig{Function: 2, Tuples: 10, Classes: 3}); err == nil {
		t.Fatal("F2 with 3 classes accepted")
	}
	if _, err := Synthetic(SyntheticConfig{Function: 7, Tuples: 10, Classes: 1}); err == nil {
		t.Fatal("1 class accepted")
	}
	if _, err := Synthetic(SyntheticConfig{Function: 7, Tuples: 10, Classes: 27}); err == nil {
		t.Fatal("27 classes accepted")
	}
}

func TestPredictProb(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{Function: 1, Tuples: 2000, Seed: 1, LabelNoise: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(ds, Options{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	row := map[string]string{
		"salary": "60000", "commission": "20000", "age": "30", "elevel": "e2",
		"car": "make5", "zipcode": "zip4", "hvalue": "500000", "hyears": "15",
		"loan": "200000",
	}
	prob, err := m.PredictProb(row)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range prob {
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %v", prob)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %g", sum)
	}
	// The argmax of PredictProb must agree with Predict.
	label, err := m.Predict(row)
	if err != nil {
		t.Fatal(err)
	}
	bestName, bestP := "", -1.0
	for name, p := range prob {
		if p > bestP || (p == bestP && name < bestName) {
			bestName, bestP = name, p
		}
	}
	// With a 10%-noise dataset the leaf is impure, so the max should be
	// strictly dominant; ties with the class order caveat are acceptable.
	if bestName != label && bestP > prob[label] {
		t.Fatalf("PredictProb argmax %q (%.3f) disagrees with Predict %q (%.3f)",
			bestName, bestP, label, prob[label])
	}
	if _, err := m.PredictProb(map[string]string{}); err == nil {
		t.Fatal("missing attributes accepted")
	}
}

func TestShuffleDeterministic(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{Function: 7, Tuples: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := ds.Shuffle(42)
	b := ds.Shuffle(42)
	c := ds.Shuffle(43)
	if a.NumRows() != ds.NumRows() {
		t.Fatal("shuffle changed row count")
	}
	sameAB, sameAC := true, true
	for i := 0; i < a.NumRows(); i++ {
		if a.Table().Class(i) != b.Table().Class(i) ||
			a.Table().ContValue(0, i) != b.Table().ContValue(0, i) {
			sameAB = false
		}
		if a.Table().ContValue(0, i) != c.Table().ContValue(0, i) {
			sameAC = false
		}
	}
	if !sameAB {
		t.Fatal("same seed gave different shuffles")
	}
	if sameAC {
		t.Fatal("different seeds gave identical shuffles")
	}
	// Class distribution preserved.
	da, dd := a.ClassDistribution(), ds.ClassDistribution()
	for k, v := range dd {
		if da[k] != v {
			t.Fatal("shuffle changed class distribution")
		}
	}
}
