package parclass

import (
	"errors"
	"strings"
	"testing"
)

// setCrossover swaps the process-wide auto threshold for one test and
// restores it on cleanup.
func setCrossover(t *testing.T, rows int) {
	t.Helper()
	old := SetLevelSyncCrossover(rows)
	t.Cleanup(func() { SetLevelSyncCrossover(old) })
}

func TestParseLevelSyncMode(t *testing.T) {
	cases := map[string]LevelSyncMode{
		"": LevelSyncAuto, "auto": LevelSyncAuto, "on": LevelSyncOn, "off": LevelSyncOff,
	}
	for in, want := range cases {
		got, err := ParseLevelSyncMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevelSyncMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevelSyncMode("sideways"); !errors.Is(err, ErrBadOption) {
		t.Fatalf("bad mode error = %v, want ErrBadOption", err)
	}
	for m, s := range map[LevelSyncMode]string{LevelSyncAuto: "auto", LevelSyncOn: "on", LevelSyncOff: "off"} {
		if m.String() != s {
			t.Fatalf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
}

func TestLevelSyncCrossoverAccessors(t *testing.T) {
	setCrossover(t, 128)
	if got := LevelSyncCrossover(); got != 128 {
		t.Fatalf("LevelSyncCrossover() = %d, want 128", got)
	}
	if old := SetLevelSyncCrossover(0); old != 128 {
		t.Fatalf("SetLevelSyncCrossover returned %d, want previous 128", old)
	}
	if got := LevelSyncCrossover(); got != 0 {
		t.Fatalf("crossover after disable = %d, want 0", got)
	}
}

// TestModelLevelSyncEquivalence pins the PR's acceptance invariant for a
// single tree: every kernel mode, per-call and stored, yields byte-identical
// predictions on both batch forms.
func TestModelLevelSyncEquivalence(t *testing.T) {
	setCrossover(t, 1) // auto always takes the kernel, so all three modes differ
	ds := synthDS(t, 7, 2000)
	m, err := Train(ds, Options{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	vrows := datasetValueRows(ds, 600)
	rows := datasetRows(ds, 600)
	wantV, err := m.PredictValuesBatchMode(vrows, LevelSyncOff)
	if err != nil {
		t.Fatal(err)
	}
	wantR, err := m.PredictBatchMode(rows, LevelSyncOff)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []LevelSyncMode{LevelSyncAuto, LevelSyncOn, LevelSyncOff} {
		gotV, err := m.PredictValuesBatchMode(vrows, mode)
		if err != nil {
			t.Fatalf("%v values: %v", mode, err)
		}
		gotR, err := m.PredictBatchMode(rows, mode)
		if err != nil {
			t.Fatalf("%v rows: %v", mode, err)
		}
		for i := range wantV {
			if gotV[i] != wantV[i] || gotR[i] != wantR[i] {
				t.Fatalf("mode %v row %d: values %q/%q, rows %q/%q",
					mode, i, gotV[i], wantV[i], gotR[i], wantR[i])
			}
		}
	}
	// The stored mode steers the plain batch entry points; an Auto per-call
	// override inherits it.
	m.SetLevelSync(LevelSyncOn)
	if m.LevelSync() != LevelSyncOn {
		t.Fatalf("LevelSync() = %v after SetLevelSync(On)", m.LevelSync())
	}
	got, err := m.PredictValuesBatch(vrows)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantV {
		if got[i] != wantV[i] {
			t.Fatalf("stored-On row %d: %q, want %q", i, got[i], wantV[i])
		}
	}
}

// TestForestLevelSyncEquivalence: same invariant for the fused-vote forest
// kernel, whose tie-breaking must match Forest.Vote exactly.
func TestForestLevelSyncEquivalence(t *testing.T) {
	setCrossover(t, 1)
	ds := synthDS(t, 7, 2000)
	f, err := TrainForest(ds, Options{Trees: 15, MaxDepth: 8, ForestSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	vrows := datasetValueRows(ds, 500)
	rows := datasetRows(ds, 500)
	wantV, err := f.PredictValuesBatchMode(vrows, LevelSyncOff)
	if err != nil {
		t.Fatal(err)
	}
	wantR, err := f.PredictBatchMode(rows, LevelSyncOff)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []LevelSyncMode{LevelSyncAuto, LevelSyncOn} {
		gotV, err := f.PredictValuesBatchMode(vrows, mode)
		if err != nil {
			t.Fatalf("%v values: %v", mode, err)
		}
		gotR, err := f.PredictBatchMode(rows, mode)
		if err != nil {
			t.Fatalf("%v rows: %v", mode, err)
		}
		for i := range wantV {
			if gotV[i] != wantV[i] || gotR[i] != wantR[i] {
				t.Fatalf("mode %v row %d: values %q/%q, rows %q/%q",
					mode, i, gotV[i], wantV[i], gotR[i], wantR[i])
			}
		}
	}
	// Per-row singles agree with the batch too (Vote vs fused kernel).
	for i, vals := range vrows[:50] {
		single, err := f.PredictValues(vals)
		if err != nil {
			t.Fatal(err)
		}
		if single != wantV[i] {
			t.Fatalf("row %d: single %q, batch %q", i, single, wantV[i])
		}
	}
}

// TestLevelSyncErrorsMatch: a malformed row must fail identically whichever
// kernel would have run — decode errors surface before any kernel choice.
func TestLevelSyncErrorsMatch(t *testing.T) {
	setCrossover(t, 1)
	ds := synthDS(t, 1, 500)
	m, err := Train(ds, Options{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	vrows := datasetValueRows(ds, 8)
	bad := append([][]string(nil), vrows...)
	bad[5] = bad[5][:1]
	_, errOn := m.PredictValuesBatchMode(bad, LevelSyncOn)
	_, errOff := m.PredictValuesBatchMode(bad, LevelSyncOff)
	if errOn == nil || errOff == nil {
		t.Fatalf("short row accepted: on=%v off=%v", errOn, errOff)
	}
	if errOn.Error() != errOff.Error() {
		t.Fatalf("error text differs by kernel:\n  on:  %v\n  off: %v", errOn, errOff)
	}
	if !errors.Is(errOn, ErrUnknownAttribute) || !strings.Contains(errOn.Error(), "row 5:") {
		t.Fatalf("error %v does not name row 5 with ErrUnknownAttribute", errOn)
	}
}
