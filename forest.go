package parclass

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/flat"
	"repro/internal/sched"
	"repro/internal/tree"
)

// Forest is a bagged ensemble of decision trees trained by TrainForest:
// each member grows over a bootstrap sample with an optional per-tree
// attribute subsample, and prediction is a majority vote (ties to the
// lowest class code). A Forest is immutable once returned by TrainForest
// or ReadModel and safe for concurrent use.
//
// The forest is deterministic in (data, options, ForestSeed): member
// seeds derive from ForestSeed and the tree index alone, so changing
// Procs reschedules the same trees, never different ones.
type Forest struct {
	trees  []*tree.Tree
	schema *dataset.Schema
	dec    rowDecoder
	nclass int

	sampleFrac  float64
	featureFrac float64
	seed        int64
	timings     Timings

	// oobErr and oobRows hold the out-of-bag error estimate computed by
	// TrainForest; oobRows is 0 when no estimate exists (SampleFrac 1, or
	// a forest loaded from disk).
	oobErr  float64
	oobRows int

	// compiled is the fused flat-pool predictor, built lazily by Compile.
	compileOnce sync.Once
	compiled    *flat.Forest
	compileErr  error
	// level is the per-member level-array layout backing the
	// level-synchronous batch kernel; nil when any member is too deep for
	// it, in which case batches always take the fused walker.
	level *flat.LevelForest
	// levelMode holds the SetLevelSync selection (a LevelSyncMode).
	levelMode atomic.Int32
	// valsPool recycles per-call decode + vote buffers.
	valsPool sync.Pool
}

// forestBuf is one predict call's reusable decode and vote scratch.
type forestBuf struct {
	cont   []float64
	cat    []int32
	counts []int32
}

func newForest(trees []*tree.Tree, sampleFrac, featureFrac float64, seed int64) *Forest {
	s := trees[0].Schema
	return &Forest{
		trees:       trees,
		schema:      s,
		dec:         newRowDecoder(s),
		nclass:      s.NumClasses(),
		sampleFrac:  sampleFrac,
		featureFrac: featureFrac,
		seed:        seed,
	}
}

// TrainForest grows an ensemble of opt.Trees decision trees over
// bootstrap samples of ds, scheduling whole trees across opt.Procs
// workers. With Trees=1, SampleFrac=1 and FeatureFrac at 0 or 1 the
// single member is exactly the tree Train would grow.
func TrainForest(ds *Dataset, opt Options) (*Forest, error) {
	return TrainForestContext(context.Background(), ds, opt)
}

// TrainForestContext is TrainForest with cancellation. A failing (or
// panicking) member build aborts the whole forest promptly: the first
// error cancels the context every in-flight member observes, remaining
// members are skipped, and the error comes back wrapped with the member
// tree's index.
func TrainForestContext(ctx context.Context, ds *Dataset, opt Options) (*Forest, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	nTrees := opt.Trees
	if nTrees == 0 {
		nTrees = 1
	}
	n := ds.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("parclass: empty training set")
	}
	nattr := ds.NumAttrs()
	nclass := ds.tbl.Schema().NumClasses()

	// Member builds run with one worker each: trees are the parallel unit.
	memberOpt := opt
	memberOpt.Procs = 1
	memberOpt.Trees = 0
	memberOpt.SampleFrac = 0
	memberOpt.FeatureFrac = 0
	memberOpt.ForestSeed = 0
	memberOpt.Monitor = nil

	buildCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Out-of-bag scoring: each bootstrap leaves ~1/e of the rows out of
	// its member's sample, so those rows are an honest test set for that
	// member. Members vote their out-of-bag rows into one shared n×nclass
	// histogram; integer adds commute, so the estimate is deterministic
	// for every Procs. SampleFrac 1 disables sampling and with it OOB.
	var (
		oobMu    sync.Mutex
		oobVotes []int32
	)
	if opt.SampleFrac != 1 {
		oobVotes = make([]int32, n*nclass)
	}

	trees := make([]*tree.Tree, nTrees)
	tims := make([]core.Timings, nTrees)
	err := sched.Run(opt.Procs, nTrees, cancel, func(worker, idx int) error {
		if opt.forestTreeHook != nil {
			if err := opt.forestTreeHook(idx); err != nil {
				return fmt.Errorf("parclass: forest tree %d: %w", idx, err)
			}
		}
		rng := rand.New(rand.NewSource(memberSeed(opt.ForestSeed, idx)))
		tbl := ds.tbl
		var sampleIdx []int
		if opt.SampleFrac != 1 {
			sampleIdx = bootstrapIndices(rng, n, opt.SampleFrac)
			tbl = tbl.Subset(sampleIdx)
		}
		cfg := memberOpt.coreConfig()
		cfg.Context = buildCtx
		cfg.StoreWrap = opt.forestStoreWrap
		cfg.AttrMask = featureMask(rng, nattr, opt.FeatureFrac)
		tr, tm, err := core.Build(tbl, cfg)
		if err != nil {
			return fmt.Errorf("parclass: forest tree %d: %w", idx, err)
		}
		tims[idx] = tm
		// Subset shares the source table's schema, so every member already
		// points at ds's schema; assert rather than assume.
		if tr.Schema != ds.tbl.Schema() {
			return fmt.Errorf("parclass: forest tree %d: schema diverged", idx)
		}
		trees[idx] = tr
		if oobVotes != nil {
			inBag := make([]bool, n)
			for _, r := range sampleIdx {
				inBag[r] = true
			}
			// Walk the member's out-of-bag rows outside the lock, then
			// merge the votes in one short critical section.
			pred := make([]int32, n)
			for i := 0; i < n; i++ {
				if inBag[i] {
					pred[i] = -1
					continue
				}
				pred[i] = int32(tr.Predict(ds.tbl.Row(i)))
			}
			oobMu.Lock()
			for i, c := range pred {
				if c >= 0 {
					oobVotes[i*int(nclass)+int(c)]++
				}
			}
			oobMu.Unlock()
		}
		return nil
	})
	if err != nil {
		// Prefer the caller's cancellation cause over a member's wrapped
		// context error.
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	f := newForest(trees, opt.SampleFrac, opt.FeatureFrac, opt.ForestSeed)
	// Timings sum the members' phase work — CPU cost, not wall clock, when
	// Procs > 1.
	for _, tm := range tims {
		f.timings.Setup += tm.Setup
		f.timings.Sort += tm.Sort
		f.timings.Build += tm.Build
	}
	if oobVotes != nil {
		wrong, scored := 0, 0
		for i := 0; i < n; i++ {
			seg := oobVotes[i*nclass : (i+1)*nclass]
			total := int32(0)
			for _, v := range seg {
				total += v
			}
			if total == 0 {
				continue
			}
			scored++
			if flat.Majority(seg) != ds.tbl.Class(i) {
				wrong++
			}
		}
		if scored > 0 {
			f.oobErr = float64(wrong) / float64(scored)
			f.oobRows = scored
		}
	}
	return f, nil
}

// OOBError returns the forest's out-of-bag error estimate: each training
// row is scored by the majority vote of only the members whose bootstrap
// left it out (ties to the lowest class code, matching Predict), so the
// estimate needs no holdout set. ok is false when no estimate exists —
// SampleFrac 1 (no sampling, every member saw every row), a bootstrap
// that happened to cover all rows, or a forest loaded from disk.
func (f *Forest) OOBError() (err float64, ok bool) {
	return f.oobErr, f.oobRows > 0
}

// OOBRows reports how many training rows the OOB estimate scored (rows
// left out by at least one member's bootstrap).
func (f *Forest) OOBRows() int { return f.oobRows }

// memberSeed derives tree idx's RNG seed from the forest seed with a
// splitmix64 step, so member streams are decorrelated and independent of
// the worker that happens to build the tree.
func memberSeed(forestSeed int64, idx int) int64 {
	z := uint64(forestSeed) + uint64(idx+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// bootstrapIndices draws the member's row sample with replacement:
// ceil(frac·n) rows, n when frac is 0 (the classic bootstrap).
func bootstrapIndices(rng *rand.Rand, n int, frac float64) []int {
	k := n
	if frac > 0 && frac < 1 {
		k = int(float64(n)*frac + 0.999999)
		if k < 1 {
			k = 1
		}
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	return idx
}

// featureMask draws the member's attribute subsample: ceil(frac·nattr)
// attributes, at least 1; nil (all attributes) when frac is 0 or 1.
func featureMask(rng *rand.Rand, nattr int, frac float64) []bool {
	if frac == 0 || frac == 1 {
		return nil
	}
	k := int(float64(nattr)*frac + 0.999999)
	if k < 1 {
		k = 1
	}
	if k > nattr {
		k = nattr
	}
	mask := make([]bool, nattr)
	for _, a := range rng.Perm(nattr)[:k] {
		mask[a] = true
	}
	return mask
}

// NumTrees reports the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// Schema exposes the forest's schema to in-module tooling. It is not part
// of the stable API.
func (f *Forest) Schema() *dataset.Schema { return f.schema }

// Timings returns the build's wall-clock phase breakdown (zero for
// forests loaded from disk).
func (f *Forest) Timings() Timings { return f.timings }

// Stats sums structural statistics over the members; Levels and
// MaxLeavesPerLevel are maxima.
func (f *Forest) Stats() TreeStats {
	var out TreeStats
	for _, tr := range f.trees {
		s := tr.Stats()
		out.Nodes += s.Nodes
		out.Leaves += s.Leaves
		if s.Levels > out.Levels {
			out.Levels = s.Levels
		}
		if s.MaxLeavesPerLevel > out.MaxLeavesPerLevel {
			out.MaxLeavesPerLevel = s.MaxLeavesPerLevel
		}
	}
	return out
}

// Compile builds (once, lazily) the fused flat predictor backing every
// batch path: all member trees concatenated into one contiguous preorder
// node pool, voted row-major. Safe for concurrent use.
func (f *Forest) Compile() error {
	f.compileOnce.Do(func() {
		f.compiled, f.compileErr = flat.CompileForest(f.trees)
		if f.compileErr != nil {
			f.compileErr = fmt.Errorf("%w: %v", ErrNotCompiled, f.compileErr)
			return
		}
		// Best-effort, like Model: a member past flat.MaxLevelDepth leaves
		// level nil and every batch takes the fused walker.
		f.level, _ = flat.BuildLevelForest(f.compiled)
	})
	return f.compileErr
}

// SetLevelSync selects the batch-predict kernel (see LevelSyncMode); the
// default LevelSyncAuto engages the level-synchronous kernel for batches
// of at least LevelSyncCrossover rows. Safe for concurrent use.
func (f *Forest) SetLevelSync(mode LevelSyncMode) { f.levelMode.Store(int32(mode)) }

// LevelSync reports the current kernel selection.
func (f *Forest) LevelSync() LevelSyncMode { return LevelSyncMode(f.levelMode.Load()) }

// getBuf leases a decode + vote scratch sized for the schema.
func (f *Forest) getBuf() *forestBuf {
	b, _ := f.valsPool.Get().(*forestBuf)
	if b == nil {
		b = &forestBuf{
			cont:   make([]float64, len(f.schema.Attrs)),
			cat:    make([]int32, len(f.schema.Attrs)),
			counts: make([]int32, f.nclass),
		}
	}
	return b
}

// Predict classifies one example given as attribute-name → value strings,
// by majority vote of the member trees.
func (f *Forest) Predict(row map[string]string) (string, error) {
	cls, _, err := f.predictRow(row, false)
	return cls, err
}

// PredictProba classifies one named row, also returning the fraction of
// trees voting for each class.
func (f *Forest) PredictProba(row map[string]string) (string, map[string]float64, error) {
	return f.predictRow(row, true)
}

func (f *Forest) predictRow(row map[string]string, wantProba bool) (string, map[string]float64, error) {
	if err := f.Compile(); err != nil {
		return "", nil, err
	}
	b := f.getBuf()
	tu := dataset.Tuple{Cont: b.cont, Cat: b.cat}
	if err := f.dec.decodeRowInto(row, tu); err != nil {
		f.valsPool.Put(b)
		return "", nil, err
	}
	clear(b.counts)
	code := f.compiled.Vote(tu, b.counts)
	cls := f.schema.Classes[code]
	var proba map[string]float64
	if wantProba {
		proba = f.votesToProba(b.counts)
	}
	f.valsPool.Put(b)
	return cls, proba, nil
}

// PredictValues classifies one positional row (one string per schema
// attribute, in Dataset.AttrNames order) by majority vote.
func (f *Forest) PredictValues(vals []string) (string, error) {
	cls, _, err := f.predictValues(vals, false)
	return cls, err
}

// PredictValuesProba is PredictProba for one positional row.
func (f *Forest) PredictValuesProba(vals []string) (string, map[string]float64, error) {
	return f.predictValues(vals, true)
}

func (f *Forest) predictValues(vals []string, wantProba bool) (string, map[string]float64, error) {
	if err := f.Compile(); err != nil {
		return "", nil, err
	}
	if len(vals) != len(f.schema.Attrs) {
		return "", nil, fmt.Errorf("%w: got %d values, schema has %d attributes",
			ErrUnknownAttribute, len(vals), len(f.schema.Attrs))
	}
	b := f.getBuf()
	tu := dataset.Tuple{Cont: b.cont, Cat: b.cat}
	for a, raw := range vals {
		if err := f.dec.decodeValue(a, raw, tu); err != nil {
			f.valsPool.Put(b)
			return "", nil, err
		}
	}
	clear(b.counts)
	code := f.compiled.Vote(tu, b.counts)
	cls := f.schema.Classes[code]
	var proba map[string]float64
	if wantProba {
		proba = f.votesToProba(b.counts)
	}
	f.valsPool.Put(b)
	return cls, proba, nil
}

// votesToProba converts a vote histogram into per-class fractions.
func (f *Forest) votesToProba(counts []int32) map[string]float64 {
	total := float64(len(f.trees))
	out := make(map[string]float64, f.nclass)
	for j, name := range f.schema.Classes {
		out[name] = float64(counts[j]) / total
	}
	return out
}

// PredictValuesBatch classifies many positional rows at once: decode and
// the fused row-major forest vote fan out over contiguous row shards, so
// an N-tree forest costs one dispatch (and one decode per row), not N. A
// malformed row fails the whole batch with an error naming the row index.
func (f *Forest) PredictValuesBatch(rows [][]string) ([]string, error) {
	return f.PredictValuesBatchMode(rows, LevelSyncAuto)
}

// PredictValuesBatchMode is PredictValuesBatch with a per-call kernel
// override; LevelSyncAuto inherits the forest's SetLevelSync mode.
func (f *Forest) PredictValuesBatchMode(rows [][]string, mode LevelSyncMode) ([]string, error) {
	return f.batch(len(rows), mode, func(i int, tu dataset.Tuple) error {
		vals := rows[i]
		if len(vals) != len(f.schema.Attrs) {
			return fmt.Errorf("row %d: %w: got %d values, schema has %d attributes",
				i, ErrUnknownAttribute, len(vals), len(f.schema.Attrs))
		}
		for a, raw := range vals {
			if err := f.dec.decodeValue(a, raw, tu); err != nil {
				return fmt.Errorf("row %d: %w", i, err)
			}
		}
		return nil
	})
}

// PredictBatch classifies many named rows at once, sharded like
// PredictValuesBatch.
func (f *Forest) PredictBatch(rows []map[string]string) ([]string, error) {
	return f.PredictBatchMode(rows, LevelSyncAuto)
}

// PredictBatchMode is PredictBatch with a per-call kernel override;
// LevelSyncAuto inherits the forest's SetLevelSync mode.
func (f *Forest) PredictBatchMode(rows []map[string]string, mode LevelSyncMode) ([]string, error) {
	return f.batch(len(rows), mode, func(i int, tu dataset.Tuple) error {
		if err := f.dec.decodeRowInto(rows[i], tu); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
		return nil
	})
}

// batch is the shared sharded decode + classify loop: decode(i, tu) fills
// row i's tuple, then the shard is classified by the kernel
// resolveLevelSync picks — the fused walker votes each row inline with
// the decode; the level-synchronous kernel runs all members over the
// shard's slice of the SoA block once its decode finishes, vote fused
// into each member's final level.
func (f *Forest) batch(n int, mode LevelSyncMode, decode func(i int, tu dataset.Tuple) error) ([]string, error) {
	if err := f.Compile(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	nAttrs := len(f.schema.Attrs)
	contBuf := make([]float64, n*nAttrs)
	catBuf := make([]int32, n*nAttrs)
	codes := make([]int32, n)
	useLevel := resolveLevelSync(mode, f.levelMode.Load(), n, f.level != nil)

	// A forest row is ~NumTrees() tree walks, so the shard worth a
	// goroutine shrinks with ensemble size.
	shardMin := batchShardMin/len(f.trees) + 1
	procs := runtime.GOMAXPROCS(0)
	if procs > n/shardMin {
		procs = n / shardMin
	}
	if procs < 1 {
		procs = 1
	}
	errs := make([]error, procs)
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		lo, hi := w*n/procs, (w+1)*n/procs
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var counts []int32
			if !useLevel {
				counts = make([]int32, f.nclass)
			}
			for i := lo; i < hi; i++ {
				tu := dataset.Tuple{
					Cont: contBuf[i*nAttrs : (i+1)*nAttrs],
					Cat:  catBuf[i*nAttrs : (i+1)*nAttrs],
				}
				if err := decode(i, tu); err != nil {
					errs[w] = err
					return
				}
				if !useLevel {
					clear(counts)
					codes[i] = f.compiled.Vote(tu, counts)
				}
			}
			if useLevel {
				f.level.ClassifyRange(contBuf, catBuf, nAttrs, lo, hi, codes)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]string, n)
	for i, c := range codes {
		out[i] = f.schema.Classes[c]
	}
	return out, nil
}

// PredictDataset classifies every row of ds (ignoring its labels) in
// order through the fused batch path.
func (f *Forest) PredictDataset(ds *Dataset) []string {
	codes := f.predictDatasetCodes(ds)
	out := make([]string, len(codes))
	for i, c := range codes {
		out[i] = f.schema.Classes[c]
	}
	return out
}

// Accuracy returns the fraction of ds classified correctly by the
// ensemble vote.
func (f *Forest) Accuracy(ds *Dataset) float64 {
	n := ds.NumRows()
	if n == 0 {
		return 0
	}
	codes := f.predictDatasetCodes(ds)
	hits := 0
	for i, c := range codes {
		if c == ds.tbl.Class(i) {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

func (f *Forest) predictDatasetCodes(ds *Dataset) []int32 {
	n := ds.NumRows()
	if n == 0 {
		return nil
	}
	if err := f.Compile(); err != nil {
		// Compile only fails on malformed trees, which TrainForest and
		// ReadModel never produce; fall back to pointer walks regardless.
		codes := make([]int32, n)
		counts := make([]int64, f.nclass)
		for i := 0; i < n; i++ {
			tu := ds.tbl.Row(i)
			for j := range counts {
				counts[j] = 0
			}
			for _, tr := range f.trees {
				counts[tr.Predict(tu)]++
			}
			best := int32(0)
			for j := 1; j < f.nclass; j++ {
				if counts[j] > counts[best] {
					best = int32(j)
				}
			}
			codes[i] = best
		}
		return codes
	}
	tus := make([]dataset.Tuple, n)
	for i := range tus {
		tus[i] = ds.tbl.Row(i)
	}
	return f.compiled.PredictBatch(tus, runtime.GOMAXPROCS(0))
}

// WriteModel serializes the forest as the v2 multi-tree envelope.
func (f *Forest) WriteModel(w io.Writer) error {
	return tree.WriteForest(w, f.trees, &tree.ForestMeta{
		SampleFrac:  f.sampleFrac,
		FeatureFrac: f.featureFrac,
		Seed:        f.seed,
	})
}

// SaveModel writes the forest to the named file.
func (f *Forest) SaveModel(path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteModel(fh); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

// Trees exposes the member trees to in-module tooling. It is not part of
// the stable API.
func (f *Forest) Trees() []*tree.Tree { return f.trees }
