package parclass

import (
	"errors"
	"strings"
	"testing"
)

func TestPredictValuesBatchMatchesPredictValues(t *testing.T) {
	ds := synthDS(t, 7, 2000)
	m, err := Train(ds, Options{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	vrows := datasetValueRows(ds, 500)
	got, err := m.PredictValuesBatch(vrows)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vrows) {
		t.Fatalf("got %d predictions for %d rows", len(got), len(vrows))
	}
	for i, vals := range vrows {
		want, err := m.PredictValues(vals)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("row %d: batch %q, single %q", i, got[i], want)
		}
	}
	// Empty batches are a no-op, not an error.
	if out, err := m.PredictValuesBatch(nil); err != nil || out != nil {
		t.Fatalf("empty batch = %v, %v", out, err)
	}
}

func TestPredictValuesBatchErrors(t *testing.T) {
	ds := synthDS(t, 1, 500)
	m, err := Train(ds, Options{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	vrows := datasetValueRows(ds, 5)

	// Wrong width at row 3: the error names the row and wraps the same
	// sentinel PredictValues returns.
	bad := append([][]string(nil), vrows...)
	bad[3] = bad[3][:2]
	if _, err := m.PredictValuesBatch(bad); !errors.Is(err, ErrUnknownAttribute) {
		t.Fatalf("short row error = %v, want ErrUnknownAttribute", err)
	} else if !strings.Contains(err.Error(), "row 3:") {
		t.Fatalf("short row error %q does not name row 3", err)
	}

	// Unknown category at row 2.
	bad = append([][]string(nil), vrows...)
	bad[2] = append([]string(nil), bad[2]...)
	for a, name := range ds.AttrNames() {
		if name == "car" {
			bad[2][a] = "spaceship"
		}
	}
	_, err = m.PredictValuesBatch(bad)
	if !errors.Is(err, ErrUnknownValue) {
		t.Fatalf("bad category error = %v, want ErrUnknownValue", err)
	}
	if !strings.Contains(err.Error(), "row 2:") {
		t.Fatalf("bad category error %q does not name row 2", err)
	}
	// The per-row message matches what PredictValues says for that row alone.
	_, single := m.PredictValues(bad[2])
	if single == nil || !strings.HasSuffix(err.Error(), single.Error()) {
		t.Fatalf("batch error %q does not end with single-row error %q", err, single)
	}
}

// BenchmarkPredictValuesRowLoopVsBatch measures the fix this PR makes to
// the server's values_rows form: a per-row PredictValues loop (the old
// serving path) against one PredictValuesBatch call over the same rows.
func BenchmarkPredictValuesRowLoopVsBatch(b *testing.B) {
	ds := synthDS(b, 7, 5000)
	m, err := Train(ds, Options{MaxDepth: 10})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Compile(); err != nil {
		b.Fatal(err)
	}
	vrows := datasetValueRows(ds, 1024)
	b.Run("rowloop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, vals := range vrows {
				if _, err := m.PredictValues(vals); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.PredictValuesBatch(vrows); err != nil {
				b.Fatal(err)
			}
		}
	})
}
