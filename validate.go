package parclass

import "fmt"

// Validate checks the option set for combinations Train would reject or
// silently misinterpret. Zero values are valid: they select the documented
// defaults (Procs 0 → 1, WindowK 0 → 4, MinSplit 0 → 2). Every error wraps
// ErrBadOption. Train calls Validate itself; calling it earlier lets a
// server reject a bad configuration before paying for dataset setup.
func (o Options) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadOption, fmt.Sprintf(format, args...))
	}
	switch o.Algorithm {
	case Serial, Basic, FWK, MWK, Subtree, RecordParallel, SLIQ, Hist:
	default:
		return bad("unknown algorithm %d", int(o.Algorithm))
	}
	switch o.Storage {
	case Memory, Disk:
	default:
		return bad("unknown storage %d", int(o.Storage))
	}
	switch o.Probe {
	case GlobalBitProbe, LeafHashProbe, LeafRelabelProbe:
	default:
		return bad("unknown probe kind %d", int(o.Probe))
	}
	if o.Procs < 0 {
		return bad("Procs must be >= 1 (or 0 for the default), got %d", o.Procs)
	}
	if o.WindowK < 0 {
		return bad("WindowK must be >= 1 (or 0 for the default), got %d", o.WindowK)
	}
	if o.MinSplit < 0 {
		return bad("MinSplit must be >= 2 (or 0 for the default), got %d", o.MinSplit)
	}
	if o.MinSplit == 1 {
		return bad("MinSplit must be >= 2, got 1")
	}
	if o.MaxDepth < 0 {
		return bad("MaxDepth must be >= 0, got %d", o.MaxDepth)
	}
	if o.MinGiniGain < 0 {
		return bad("MinGiniGain must be >= 0, got %g", o.MinGiniGain)
	}
	if o.Trees < 0 {
		return bad("Trees must be >= 1 (or 0 for the default), got %d", o.Trees)
	}
	if o.SampleFrac < 0 || o.SampleFrac > 1 {
		return bad("SampleFrac must be in (0,1] (or 0 for the classic bootstrap), got %g", o.SampleFrac)
	}
	if o.FeatureFrac < 0 || o.FeatureFrac > 1 {
		return bad("FeatureFrac must be in (0,1] (or 0 to use every attribute), got %g", o.FeatureFrac)
	}
	if o.Trees > 1 {
		// Member trees build with one worker each — trees are the parallel
		// unit — so only the single-worker engines apply.
		if o.Algorithm != Serial && o.Algorithm != Hist {
			return bad("Algorithm must be Serial or Hist when Trees > 1 (members build single-worker), got %v", o.Algorithm)
		}
		if o.Monitor != nil {
			return bad("Monitor is unsupported when Trees > 1 (member builds interleave)")
		}
	}
	if o.Algorithm == RecordParallel && o.Probe != GlobalBitProbe {
		return bad("RecordParallel requires GlobalBitProbe (workers set probe bits concurrently)")
	}
	if o.Algorithm == SLIQ && o.Storage == Disk {
		return bad("SLIQ supports Memory storage only")
	}
	if o.MaxBins != 0 {
		if o.Algorithm != Hist {
			return bad("MaxBins applies to the Hist algorithm only, got algorithm %v", o.Algorithm)
		}
		if o.MaxBins < 2 || o.MaxBins > 65536 {
			return bad("MaxBins must be in [2,65536] (or 0 for the default 256), got %d", o.MaxBins)
		}
	}
	// Hist keeps no attribute lists, so the options that tune them would be
	// silently ignored; reject them instead.
	if o.Algorithm == Hist {
		if o.Storage == Disk {
			return bad("Hist supports Memory storage only (it keeps no attribute lists)")
		}
		if o.TempDir != "" {
			return bad("TempDir is unused by Hist (it keeps no attribute-list files)")
		}
		if o.Probe != GlobalBitProbe {
			return bad("Probe is unused by Hist (it splits by row-index permutation, not probes)")
		}
		if o.WindowK != 0 {
			return bad("WindowK applies to FWK/MWK only, not Hist")
		}
	}
	return nil
}
