package parclass

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// datasetRows re-encodes the first n tuples of ds as name→string rows, the
// wire form Predict and PredictBatch accept.
func datasetRows(ds *Dataset, n int) []map[string]string {
	if n > ds.NumRows() {
		n = ds.NumRows()
	}
	s := ds.tbl.Schema()
	rows := make([]map[string]string, n)
	for i := 0; i < n; i++ {
		row := make(map[string]string, len(s.Attrs))
		for a := range s.Attrs {
			if s.Attrs[a].Kind == dataset.Continuous {
				row[s.Attrs[a].Name] = strconv.FormatFloat(ds.tbl.ContValue(a, i), 'g', -1, 64)
			} else {
				row[s.Attrs[a].Name] = s.Attrs[a].Categories[ds.tbl.CatValue(a, i)]
			}
		}
		rows[i] = row
	}
	return rows
}

// TestPredictBatchMatchesPredict: the batch path (compiled flat tree,
// sharded fan-out, amortized decode) must agree with per-row Predict.
func TestPredictBatchMatchesPredict(t *testing.T) {
	ds := synthDS(t, 7, 3000)
	m, err := Train(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := datasetRows(ds, 1000)
	got, err := m.PredictBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("got %d predictions for %d rows", len(got), len(rows))
	}
	for i, row := range rows {
		want, err := m.Predict(row)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("row %d: batch %q, single %q", i, got[i], want)
		}
	}
}

func TestPredictBatchErrors(t *testing.T) {
	ds := synthDS(t, 1, 1000)
	m, err := Train(ds, Options{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	rows := datasetRows(ds, 10)
	rows[7]["car"] = "spaceship"
	if _, err := m.PredictBatch(rows); err == nil {
		t.Fatal("unknown category accepted")
	} else if !strings.Contains(err.Error(), "row 7") {
		t.Fatalf("error %q does not name the failing row", err)
	}
	if out, err := m.PredictBatch(nil); err != nil || out != nil {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}

// TestCompileIdempotentAndLoadedModelsBatch: Compile is a one-time lazy
// build, and models reloaded from disk (which skip Train's construction
// path) batch-predict identically.
func TestCompileIdempotentAndLoadedModelsBatch(t *testing.T) {
	ds := synthDS(t, 7, 2000)
	m, err := Train(ds, Options{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Compile(); err != nil {
		t.Fatal(err)
	}
	if err := m.Compile(); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/m.json"
	if err := m.SaveModel(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	rows := datasetRows(ds, 300)
	want, err := m.PredictBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.PredictBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: reloaded model %q, original %q", i, got[i], want[i])
		}
	}
}
