// Package parclass is a decision-tree classifier for shared-memory
// multiprocessors, reproducing Zaki, Ho & Agrawal, "Parallel Classification
// for Data Mining on Shared-Memory Multiprocessors" (ICDE 1999).
//
// The classifier is SPRINT: pre-sorted attribute lists, gini-index split
// selection, breadth-first growth, probe-based list splitting, and optional
// MDL pruning. Tree growth can run serially or under one of the paper's
// four SMP schemes — BASIC, FWK, MWK (attribute data parallelism, the
// latter two with task pipelining) and SUBTREE (dynamic subtree task
// parallelism) — all of which produce the identical tree. Attribute lists
// may live in memory or in reusable disk files, the paper's two machine
// configurations.
//
// Quick start:
//
//	ds, _ := parclass.Synthetic(parclass.SyntheticConfig{Function: 7, Tuples: 10000})
//	train, test := ds.SplitHoldout(0.25)
//	model, _ := parclass.Train(train, parclass.Options{Algorithm: parclass.MWK, Procs: 4})
//	fmt.Printf("accuracy: %.3f\n", model.Accuracy(test))
package parclass

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alist"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/flat"
	"repro/internal/probe"
	"repro/internal/prune"
	"repro/internal/sliq"
	"repro/internal/synth"
	coretrace "repro/internal/trace"
	"repro/internal/tree"
)

// Algorithm selects the tree-growth scheme.
type Algorithm int

const (
	// Serial is uniprocessor SPRINT.
	Serial Algorithm = iota
	// Basic is attribute data parallelism with a master-serial W phase.
	Basic
	// FWK pipelines probe construction with evaluation over fixed blocks
	// of K leaves.
	FWK
	// MWK uses a moving window of K leaves with per-leaf condition
	// variables; the paper's best scheme overall.
	MWK
	// Subtree assigns processor groups to disjoint subtrees dynamically.
	Subtree
	// RecordParallel is the record-data-parallel baseline the paper argues
	// against for SMPs; each worker owns 1/P of every attribute list.
	RecordParallel
	// SLIQ is the serial predecessor classifier (class list + static
	// attribute lists); it grows the identical tree through a different
	// data organization and ignores Procs and Storage.
	SLIQ
	// Hist is the approximate histogram-binned engine: continuous
	// attributes are pre-binned into at most MaxBins quantile bins, splits
	// are evaluated over per-node class×bin histograms and nodes are
	// partitioned by permuting a row-index array — no attribute lists, no
	// pre-sort, no list rewriting. Its splits land on bin boundaries
	// instead of exact record mid-points, trading a bounded accuracy delta
	// for builds that scale past the exact engines' practical row limits.
	// It requires Memory storage, the default probe and an unset WindowK.
	Hist
)

// String names the algorithm.
func (a Algorithm) String() string {
	if a == SLIQ {
		return "SLIQ"
	}
	return coreAlgorithm(a).String()
}

func coreAlgorithm(a Algorithm) core.Algorithm {
	switch a {
	case Serial:
		return core.Serial
	case Basic:
		return core.Basic
	case FWK:
		return core.FWK
	case MWK:
		return core.MWK
	case Subtree:
		return core.Subtree
	case RecordParallel:
		return core.RecPar
	case Hist:
		return core.Hist
	case SLIQ:
		// SLIQ never reaches the core engine; map it to an invalid core
		// value so a misrouted config fails validation instead of silently
		// selecting whichever core algorithm shares the integer.
		return core.Algorithm(-1)
	default:
		return core.Algorithm(int(a))
	}
}

// Storage selects where attribute lists live during the build.
type Storage int

const (
	// Memory keeps attribute lists in RAM (the paper's large-memory
	// "Machine B" configuration).
	Memory Storage = iota
	// Disk keeps attribute lists in a fixed set of reusable binary files
	// (the paper's local-disk "Machine A" configuration).
	Disk
)

// ProbeKind selects the tid→child probe design used while splitting lists.
type ProbeKind int

const (
	// GlobalBitProbe is one bit per training tuple, shared by all leaves.
	GlobalBitProbe ProbeKind = iota
	// LeafHashProbe keeps a per-leaf hash set of the smaller child's tids.
	LeafHashProbe
	// LeafRelabelProbe keeps per-leaf dense bit probes over relabeled
	// tids, rewriting tids at every split.
	LeafRelabelProbe
)

// Options configures Train. The zero value trains serially in memory with
// the paper's defaults (window K=4, global bit probe, no pruning).
type Options struct {
	// Algorithm selects the growth scheme.
	Algorithm Algorithm
	// Procs is the number of worker goroutines for parallel schemes
	// (default 1).
	Procs int
	// WindowK is the window size for FWK/MWK (default 4).
	WindowK int
	// Storage selects the attribute-list backend.
	Storage Storage
	// TempDir holds the Disk backend's files (default: a fresh temp dir,
	// removed afterwards).
	TempDir string
	// Probe selects the probe design.
	Probe ProbeKind
	// MinSplit stops splitting leaves with fewer tuples (default 2).
	MinSplit int
	// MaxDepth bounds tree depth when > 0.
	MaxDepth int
	// MinGiniGain requires each split to reduce gini by at least this
	// much (default 0, pure SPRINT behaviour).
	MinGiniGain float64
	// MaxBins is the Hist engine's bin budget per continuous attribute
	// (default 256, valid 2..65536). Setting it with any other algorithm
	// is rejected by Validate.
	MaxBins int
	// Prune applies MDL pruning after growth.
	Prune bool
	// PartialPrune uses SLIQ's partial-pruning option set (a child may be
	// collapsed while its sibling subtree survives); implies Prune.
	PartialPrune bool
	// ParallelSetup parallelizes attribute-list creation and sorting.
	ParallelSetup bool
	// Monitor, when non-nil, observes the build live: poll
	// Monitor.Snapshot from another goroutine for in-progress per-worker
	// phase totals. Each training run needs its own BuildMonitor.
	Monitor *BuildMonitor

	// Trees is the ensemble size for TrainForest (default 1). Train — the
	// single-tree path — rejects Trees > 1; forest builds with Trees > 1
	// require Algorithm Serial or Hist (whole trees are the parallel unit,
	// scheduled across Procs workers, so the intra-tree SMP schemes do not
	// apply).
	Trees int
	// SampleFrac sizes each tree's bootstrap sample as a fraction of the
	// training rows, drawn with replacement. 0 selects the classic
	// bootstrap (n rows with replacement); exactly 1 disables sampling
	// (every tree sees the full dataset in its original order — the
	// identity used to check a 1-tree forest against Train).
	SampleFrac float64
	// FeatureFrac subsamples the attributes each tree may split on:
	// ceil(FeatureFrac · attrs) attributes per tree, at least 1. 0 or 1
	// disables subsampling.
	FeatureFrac float64
	// ForestSeed derives every tree's bootstrap and feature-subsample RNG.
	// The forest is a pure function of (data, options, ForestSeed) — Procs
	// changes the schedule, never the trees.
	ForestSeed int64

	// forestTreeHook, when non-nil, runs before each member tree's build
	// with the tree index; an error (or panic) injects a per-tree failure.
	// Chaos-test seam.
	forestTreeHook func(treeIdx int) error
	// forestStoreWrap is passed to each member build's Config.StoreWrap.
	// Chaos-test seam.
	forestStoreWrap func(alist.Store) alist.Store
}

func (o Options) coreConfig() core.Config {
	cfg := core.Config{
		Algorithm:     coreAlgorithm(o.Algorithm),
		Procs:         o.Procs,
		WindowK:       o.WindowK,
		MinSplit:      int64(o.MinSplit),
		MaxDepth:      o.MaxDepth,
		MinGiniGain:   o.MinGiniGain,
		MaxBins:       o.MaxBins,
		ParallelSetup: o.ParallelSetup,
		TempDir:       o.TempDir,
	}
	switch o.Storage {
	case Disk:
		cfg.Storage = core.Disk
	default:
		cfg.Storage = core.Memory
	}
	switch o.Probe {
	case LeafHashProbe:
		cfg.Probe = probe.LeafHash
	case LeafRelabelProbe:
		cfg.Probe = probe.LeafRelabel
	default:
		cfg.Probe = probe.GlobalBit
	}
	return cfg
}

// Dataset is a labeled training set.
type Dataset struct {
	tbl *dataset.Table
}

// LoadCSV reads a CSV file with a header row; the last column is the class.
// Columns whose every value parses as a number become continuous attributes,
// the rest categorical.
func LoadCSV(path string) (*Dataset, error) {
	tbl, err := dataset.InferCSVFile(path)
	if err != nil {
		return nil, err
	}
	return &Dataset{tbl: tbl}, nil
}

// SaveCSV writes the dataset as CSV with a header row.
func (d *Dataset) SaveCSV(path string) error { return d.tbl.WriteCSVFile(path) }

// SyntheticConfig parameterizes the Agrawal–Imielinski–Swami synthetic data
// generator used throughout the paper's evaluation.
type SyntheticConfig struct {
	// Function is the classification function, 1..10 (the paper evaluates
	// 1, simple, and 7, complex). Default 1.
	Function int
	// Tuples is the number of training examples.
	Tuples int
	// Attrs is the total attribute count (>= 9; default 9). Widths beyond
	// the nine canonical attributes are uniform noise columns.
	Attrs int
	// Seed makes generation deterministic.
	Seed int64
	// Perturbation jitters continuous values after labeling (default 0;
	// the paper-style datasets use 0.05).
	Perturbation float64
	// LabelNoise flips each label with this probability.
	LabelNoise float64
	// Classes selects a multi-way labeling (default 2): Function 1
	// supports 3 (its natural age bands); functions 7–10 support 2..26 by
	// banding the disposable-income score.
	Classes int
}

// Synthetic generates a labeled dataset.
func Synthetic(cfg SyntheticConfig) (*Dataset, error) {
	if cfg.Function == 0 {
		cfg.Function = 1
	}
	tbl, err := synth.Generate(synth.Config{
		Function:     cfg.Function,
		Tuples:       cfg.Tuples,
		Attrs:        cfg.Attrs,
		Seed:         cfg.Seed,
		Perturbation: cfg.Perturbation,
		LabelNoise:   cfg.LabelNoise,
		Classes:      cfg.Classes,
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{tbl: tbl}, nil
}

// NumRows returns the number of tuples.
func (d *Dataset) NumRows() int { return d.tbl.NumTuples() }

// NumAttrs returns the number of non-class attributes.
func (d *Dataset) NumAttrs() int { return d.tbl.Schema().NumAttrs() }

// AttrNames lists the attribute names in column order.
func (d *Dataset) AttrNames() []string {
	s := d.tbl.Schema()
	names := make([]string, len(s.Attrs))
	for i := range s.Attrs {
		names[i] = s.Attrs[i].Name
	}
	return names
}

// ClassNames lists the class label names.
func (d *Dataset) ClassNames() []string {
	return append([]string(nil), d.tbl.Schema().Classes...)
}

// ClassDistribution returns the tuple count per class name.
func (d *Dataset) ClassDistribution() map[string]int {
	h := d.tbl.ClassHistogram()
	out := make(map[string]int, len(h))
	for i, c := range h {
		out[d.tbl.Schema().Classes[i]] = c
	}
	return out
}

// Shuffle returns a row-permuted copy of the dataset, deterministic in the
// seed; use before SplitHoldout when row order carries structure.
func (d *Dataset) Shuffle(seed int64) *Dataset {
	idx := rand.New(rand.NewSource(seed)).Perm(d.tbl.NumTuples())
	return &Dataset{tbl: d.tbl.Subset(idx)}
}

// SplitHoldout splits off the last fraction of rows as a test set.
func (d *Dataset) SplitHoldout(testFrac float64) (train, test *Dataset) {
	tr, te := d.tbl.SplitHoldout(testFrac)
	return &Dataset{tbl: tr}, &Dataset{tbl: te}
}

// Table exposes the underlying columnar table to in-module tooling (cmd/,
// benchmarks). It is not part of the stable API.
func (d *Dataset) Table() *dataset.Table { return d.tbl }

// DatasetFromTable wraps a columnar table as a Dataset, for in-module
// tooling that assembles tables directly (the ingest window's retrain
// snapshots). It is not part of the stable API.
func DatasetFromTable(tbl *dataset.Table) *Dataset { return &Dataset{tbl: tbl} }

// Timings is the phase breakdown of a build, mirroring the paper's
// setup/sort/build decomposition.
type Timings struct {
	Setup, Sort, Build time.Duration
}

// Total returns setup + sort + build.
func (t Timings) Total() time.Duration { return t.Setup + t.Sort + t.Build }

// TreeStats summarizes a trained tree; Levels and MaxLeavesPerLevel are the
// paper's "tree size" columns.
type TreeStats struct {
	Nodes             int
	Leaves            int
	Levels            int
	MaxLeavesPerLevel int
}

// Model is a trained decision-tree classifier. A Model is immutable once
// returned by Train or LoadModel and safe for concurrent use by multiple
// goroutines.
type Model struct {
	tree    *tree.Tree
	timings Timings
	pruned  int
	// dec converts rows into schema tuples (shared logic with Forest).
	dec rowDecoder
	// compiled is the flat-array predictor, built lazily by Compile.
	compileOnce sync.Once
	compiled    *flat.Tree
	compileErr  error
	// level is the breadth-first level-array layout backing the
	// level-synchronous batch kernel; nil when the tree is too deep for it
	// (flat.MaxLevelDepth), in which case batches always take the walker.
	level *flat.LevelTree
	// levelMode holds the SetLevelSync selection (a LevelSyncMode).
	levelMode atomic.Int32
	// buildTrace is the build observability record; nil for SLIQ models
	// and models read back from disk.
	buildTrace *BuildTrace
	// valsPool recycles PredictValues' decode buffers.
	valsPool sync.Pool
}

// newModel wraps a tree, precomputing the categorical decode index.
func newModel(tr *tree.Tree) *Model {
	return &Model{tree: tr, dec: newRowDecoder(tr.Schema)}
}

// Train grows (and optionally prunes) a decision tree over the dataset.
func Train(ds *Dataset, opt Options) (*Model, error) {
	return TrainContext(context.Background(), ds, opt)
}

// TrainContext is Train with cancellation: workers observe ctx at work-unit
// granularity and the error is ctx.Err() when cancelled. Invalid option
// combinations are rejected up front with an error wrapping ErrBadOption.
func TrainContext(ctx context.Context, ds *Dataset, opt Options) (*Model, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if opt.Trees > 1 || opt.SampleFrac != 0 || opt.FeatureFrac != 0 || opt.ForestSeed != 0 {
		return nil, fmt.Errorf("%w: forest options (Trees, SampleFrac, FeatureFrac, ForestSeed) are set; use TrainForest", ErrBadOption)
	}
	var (
		tr  *tree.Tree
		tm  core.Timings
		bt  *BuildTrace
		err error
	)
	if opt.Algorithm == SLIQ {
		tr, err = sliq.Build(ds.tbl, sliq.Config{
			MinSplit: int64(opt.MinSplit),
			MaxDepth: opt.MaxDepth,
		})
	} else {
		cfg := opt.coreConfig()
		cfg.Context = ctx
		procs := opt.Procs
		if procs < 1 {
			procs = 1
		}
		rec := coretrace.NewRecorder(procs)
		cfg.Recorder = rec
		if opt.Monitor != nil {
			opt.Monitor.begin(opt.Algorithm, procs, rec)
		}
		tr, tm, err = core.Build(ds.tbl, cfg)
		if err == nil {
			bt = buildTraceFrom(opt.Algorithm, procs, tm.Build, rec.Snapshot())
		}
		if opt.Monitor != nil {
			opt.Monitor.finish(bt, err)
		}
	}
	if err != nil {
		return nil, err
	}
	m := newModel(tr)
	m.timings = Timings{Setup: tm.Setup, Sort: tm.Sort, Build: tm.Build}
	m.buildTrace = bt
	if opt.PartialPrune {
		res := prune.MDLPartial(tr)
		m.pruned = res.Pruned
	} else if opt.Prune {
		res := prune.MDL(tr)
		m.pruned = res.Pruned
	}
	return m, nil
}

// Timings returns the build's phase breakdown.
func (m *Model) Timings() Timings { return m.timings }

// BuildTrace returns the build-phase observability record: per worker and
// per tree level, the time spent in the paper's E/W/S phases plus barrier
// and idle waits, with skew and parallel-efficiency accessors. It is nil
// for SLIQ models and models loaded from disk.
func (m *Model) BuildTrace() *BuildTrace { return m.buildTrace }

// PrunedSubtrees reports how many subtrees MDL pruning collapsed (0 when
// pruning was disabled).
func (m *Model) PrunedSubtrees() int { return m.pruned }

// Stats returns structural statistics of the tree.
func (m *Model) Stats() TreeStats {
	s := m.tree.Stats()
	return TreeStats{
		Nodes:             s.Nodes,
		Leaves:            s.Leaves,
		Levels:            s.Levels,
		MaxLeavesPerLevel: s.MaxLeavesPerLevel,
	}
}

// Accuracy returns the fraction of ds classified correctly.
func (m *Model) Accuracy(ds *Dataset) float64 { return m.tree.Accuracy(ds.tbl) }

// decodeRow converts a name→string row into a schema tuple.
func (m *Model) decodeRow(row map[string]string) (dataset.Tuple, error) {
	return m.dec.decodeRow(row)
}

// Predict classifies a single example given as attribute-name → value
// strings (continuous values in any strconv.ParseFloat form, categorical
// values by category name). Missing attributes are an error.
func (m *Model) Predict(row map[string]string) (string, error) {
	tu, err := m.decodeRow(row)
	if err != nil {
		return "", err
	}
	return m.tree.Schema.Classes[m.tree.Predict(tu)], nil
}

// Compile builds (once, lazily) the flat-array predictor that backs
// PredictBatch: the tree linearized into a preorder node array with
// bitmask categorical tests, trading a one-time compile for pointer-free
// tree walks. Calling it eagerly after Train or LoadModel moves that cost
// off the first request; PredictBatch compiles on demand otherwise. Safe
// for concurrent use.
func (m *Model) Compile() error {
	m.compileOnce.Do(func() {
		m.compiled, m.compileErr = flat.Compile(m.tree)
		if m.compileErr != nil {
			m.compileErr = fmt.Errorf("%w: %v", ErrNotCompiled, m.compileErr)
			return
		}
		// The level layout is best-effort: a tree past flat.MaxLevelDepth
		// (or any other build refusal) just leaves level nil and every
		// batch takes the preorder walker.
		m.level, _ = flat.BuildLevel(m.compiled)
	})
	return m.compileErr
}

// SetLevelSync selects the batch-predict kernel (see LevelSyncMode); the
// default LevelSyncAuto engages the level-synchronous kernel for batches
// of at least LevelSyncCrossover rows. Safe for concurrent use.
func (m *Model) SetLevelSync(mode LevelSyncMode) { m.levelMode.Store(int32(mode)) }

// LevelSync reports the current kernel selection.
func (m *Model) LevelSync() LevelSyncMode { return LevelSyncMode(m.levelMode.Load()) }

// valsBuf is PredictValues' reusable decode buffer.
type valsBuf struct {
	cont []float64
	cat  []int32
}

// PredictValues classifies a single example given positionally: one string
// per schema attribute, in Dataset.AttrNames order. It skips Predict's map
// lookups and per-call allocations (buffers come from a pool), making it
// the fast path for high-throughput callers that send rows in a fixed
// column order. Wrong-width rows fail with ErrUnknownAttribute, undecodable
// values with ErrUnknownValue.
func (m *Model) PredictValues(vals []string) (string, error) {
	if err := m.Compile(); err != nil {
		return "", err
	}
	s := m.tree.Schema
	if len(vals) != len(s.Attrs) {
		return "", fmt.Errorf("%w: got %d values, schema has %d attributes",
			ErrUnknownAttribute, len(vals), len(s.Attrs))
	}
	b, _ := m.valsPool.Get().(*valsBuf)
	if b == nil {
		b = &valsBuf{
			cont: make([]float64, len(s.Attrs)),
			cat:  make([]int32, len(s.Attrs)),
		}
	}
	tu := dataset.Tuple{Cont: b.cont, Cat: b.cat}
	for a, raw := range vals {
		if err := m.dec.decodeValue(a, raw, tu); err != nil {
			m.valsPool.Put(b)
			return "", err
		}
	}
	code := m.compiled.Predict(tu)
	m.valsPool.Put(b)
	return s.Classes[code], nil
}

// PredictValuesBatch classifies many positional rows at once: the batch
// form of PredictValues, and the fast path for bulk positional traffic
// (the server's "values_rows" request form and its micro-batcher dispatch
// both land here). Decode and the compiled flat-tree walk fan out over
// contiguous row shards exactly like PredictBatch, with one backing array
// per column kind instead of per-row buffers. It returns one predicted
// class name per row, in order; a malformed row fails the whole batch with
// an error naming the row index ("row %d: ...") and wrapping the same
// sentinel PredictValues would return for that row alone.
func (m *Model) PredictValuesBatch(rows [][]string) ([]string, error) {
	return m.PredictValuesBatchMode(rows, LevelSyncAuto)
}

// PredictValuesBatchMode is PredictValuesBatch with a per-call kernel
// override; LevelSyncAuto inherits the model's SetLevelSync mode.
func (m *Model) PredictValuesBatchMode(rows [][]string, mode LevelSyncMode) ([]string, error) {
	if err := m.Compile(); err != nil {
		return nil, err
	}
	nAttrs := len(m.tree.Schema.Attrs)
	return m.batchPredict(len(rows), nAttrs, mode, func(i int, tu dataset.Tuple) error {
		vals := rows[i]
		if len(vals) != nAttrs {
			return fmt.Errorf("row %d: %w: got %d values, schema has %d attributes",
				i, ErrUnknownAttribute, len(vals), nAttrs)
		}
		for a, raw := range vals {
			if err := m.dec.decodeValue(a, raw, tu); err != nil {
				return fmt.Errorf("row %d: %w", i, err)
			}
		}
		return nil
	})
}

// PredictBatch classifies many examples at once, fanning decode + compiled
// tree walks out over contiguous row shards (one goroutine per GOMAXPROCS
// processor for large batches). It returns one predicted class name per
// row, in order; a malformed row fails the whole batch with an error naming
// the row index.
func (m *Model) PredictBatch(rows []map[string]string) ([]string, error) {
	return m.PredictBatchMode(rows, LevelSyncAuto)
}

// PredictBatchMode is PredictBatch with a per-call kernel override;
// LevelSyncAuto inherits the model's SetLevelSync mode.
func (m *Model) PredictBatchMode(rows []map[string]string, mode LevelSyncMode) ([]string, error) {
	if err := m.Compile(); err != nil {
		return nil, err
	}
	nAttrs := len(m.tree.Schema.Attrs)
	return m.batchPredict(len(rows), nAttrs, mode, func(i int, tu dataset.Tuple) error {
		if err := m.dec.decodeRowInto(rows[i], tu); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
		return nil
	})
}

// batchPredict is the shared engine behind both batch forms: decode into
// one contiguous SoA buffer per column kind (amortizing the per-row slice
// allocations Predict pays), sharded over GOMAXPROCS workers, then
// classify each shard with the kernel resolveLevelSync picks — the
// preorder walker inline with the decode, or the level-synchronous kernel
// over the shard's slice of the SoA block once its decode finishes.
func (m *Model) batchPredict(n, nAttrs int, mode LevelSyncMode, decode func(i int, tu dataset.Tuple) error) ([]string, error) {
	if n == 0 {
		return nil, nil
	}
	contBuf := make([]float64, n*nAttrs)
	catBuf := make([]int32, n*nAttrs)
	codes := make([]int32, n)
	useLevel := resolveLevelSync(mode, m.levelMode.Load(), n, m.level != nil)

	procs := runtime.GOMAXPROCS(0)
	if procs > n/batchShardMin {
		procs = n / batchShardMin
	}
	if procs < 1 {
		procs = 1
	}
	errs := make([]error, procs)
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		lo, hi := w*n/procs, (w+1)*n/procs
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				tu := dataset.Tuple{
					Cont: contBuf[i*nAttrs : (i+1)*nAttrs],
					Cat:  catBuf[i*nAttrs : (i+1)*nAttrs],
				}
				if err := decode(i, tu); err != nil {
					errs[w] = err
					return
				}
				if !useLevel {
					codes[i] = m.compiled.Predict(tu)
				}
			}
			if useLevel {
				m.level.ClassifyRange(contBuf, catBuf, nAttrs, lo, hi, codes)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]string, n)
	classes := m.tree.Schema.Classes
	for i, c := range codes {
		out[i] = classes[c]
	}
	return out, nil
}

// batchShardMin is the smallest per-goroutine shard PredictBatch will fan
// out; smaller batches decode and predict on the caller's goroutine.
const batchShardMin = 64

// String renders the tree as an indented outline.
func (m *Model) String() string { return m.tree.String() }

// Rules returns one human-readable rule per leaf.
func (m *Model) Rules() []string {
	rules := m.tree.Rules()
	out := make([]string, len(rules))
	for i, r := range rules {
		cond := "true"
		if len(r.Conditions) > 0 {
			cond = strings.Join(r.Conditions, " AND ")
		}
		out[i] = fmt.Sprintf("IF %s THEN class=%s (n=%d, err=%d)", cond, r.Class, r.N, r.Errors)
	}
	return out
}

// SQL renders the tree as a SQL CASE expression.
func (m *Model) SQL() string { return m.tree.SQL() }

// AttrImportance lists attributes by how many tree nodes split on them.
func (m *Model) AttrImportance() []string {
	usage := m.tree.AttrUsage()
	out := make([]string, len(usage))
	for i, u := range usage {
		out[i] = fmt.Sprintf("%s (%d splits)", u.Name, u.Count)
	}
	return out
}

// Tree exposes the underlying tree to in-module tooling. It is not part of
// the stable API.
func (m *Model) Tree() *tree.Tree { return m.tree }

// Schema exposes the model's schema to in-module tooling. It is not part
// of the stable API.
func (m *Model) Schema() *dataset.Schema { return m.tree.Schema }

// NumTrees reports the ensemble size; a Model is always one tree.
func (m *Model) NumTrees() int { return 1 }
