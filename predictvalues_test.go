package parclass

import (
	"errors"
	"testing"
)

// datasetValueRows re-encodes the first n tuples as positional string rows
// in schema attribute order, the form PredictValues accepts.
func datasetValueRows(ds *Dataset, n int) [][]string {
	rows := datasetRows(ds, n)
	names := ds.AttrNames()
	out := make([][]string, len(rows))
	for i, row := range rows {
		vals := make([]string, len(names))
		for a, name := range names {
			vals[a] = row[name]
		}
		out[i] = vals
	}
	return out
}

func TestPredictValuesMatchesPredict(t *testing.T) {
	ds := synthDS(t, 7, 2000)
	m, err := Train(ds, Options{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	rows := datasetRows(ds, 500)
	vrows := datasetValueRows(ds, 500)
	for i := range rows {
		want, err := m.Predict(rows[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.PredictValues(vrows[i])
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("row %d: positional %q, map %q", i, got, want)
		}
	}
}

func TestPredictValuesErrors(t *testing.T) {
	ds := synthDS(t, 1, 500)
	m, err := Train(ds, Options{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	vrows := datasetValueRows(ds, 1)
	// Wrong width.
	if _, err := m.PredictValues(vrows[0][:3]); !errors.Is(err, ErrUnknownAttribute) {
		t.Fatalf("short row error = %v, want ErrUnknownAttribute", err)
	}
	// Unknown category.
	bad := append([]string(nil), vrows[0]...)
	names := ds.AttrNames()
	for a, name := range names {
		if name == "car" {
			bad[a] = "spaceship"
		}
	}
	if _, err := m.PredictValues(bad); !errors.Is(err, ErrUnknownValue) {
		t.Fatalf("bad category error = %v, want ErrUnknownValue", err)
	}
	// Unparseable number.
	bad = append([]string(nil), vrows[0]...)
	for a, name := range names {
		if name == "salary" {
			bad[a] = "not-a-number"
		}
	}
	if _, err := m.PredictValues(bad); !errors.Is(err, ErrUnknownValue) {
		t.Fatalf("bad number error = %v, want ErrUnknownValue", err)
	}
}

func TestPredictSentinelErrors(t *testing.T) {
	ds := synthDS(t, 1, 500)
	m, err := Train(ds, Options{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	rows := datasetRows(ds, 1)
	missing := make(map[string]string)
	for k, v := range rows[0] {
		if k != "age" {
			missing[k] = v
		}
	}
	if _, err := m.Predict(missing); !errors.Is(err, ErrUnknownAttribute) {
		t.Fatalf("missing attr error = %v, want ErrUnknownAttribute", err)
	}
	bad := make(map[string]string)
	for k, v := range rows[0] {
		bad[k] = v
	}
	bad["car"] = "spaceship"
	if _, err := m.Predict(bad); !errors.Is(err, ErrUnknownValue) {
		t.Fatalf("bad value error = %v, want ErrUnknownValue", err)
	}
	if _, err := m.PredictBatch([]map[string]string{bad}); !errors.Is(err, ErrUnknownValue) {
		t.Fatalf("batch bad value error = %v, want ErrUnknownValue", err)
	}
}

// BenchmarkPredictMapVsValues compares the map row path against the
// positional fast path on identical rows.
func BenchmarkPredictMapVsValues(b *testing.B) {
	ds := synthDS(b, 7, 5000)
	m, err := Train(ds, Options{MaxDepth: 10})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Compile(); err != nil {
		b.Fatal(err)
	}
	rows := datasetRows(ds, 256)
	vrows := datasetValueRows(ds, 256)
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.Predict(rows[i%len(rows)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("values", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.PredictValues(vrows[i%len(vrows)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
